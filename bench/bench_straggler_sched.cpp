// Client-side straggler-aware scheduling ablation (DESIGN.md §16). The
// fault ablation's verdict stands for every *interrupt* policy: one slow
// server stretches the p99 read tail equally, because a striped read is as
// slow as its slowest strip. This bench measures the client-side answer —
// EWMA-driven redirect plus hedged reads (client.sched.*) — across
// straggler severity and interrupt-routing policy:
//   * scheduler x straggler severity — the headline: straggler_aware must
//     claw back the p99 tail fifo cannot, and must not regress the
//     no-fault row;
//   * scheduler x routing policy at a fixed severe straggler — the client
//     scheduler composes with (does not substitute for) interrupt
//     placement;
//   * hedge quantile sensitivity — earlier hedges trade duplicate work
//     (wasted hedges ride the softirq path) for tail latency.
// Every knob is a reflected field, so any point is replayable with --set.
#include "figure_common.hpp"

using namespace saisim;

namespace {

ExperimentConfig sched_config() {
  // 128K transfers over an 8-server stripe: each read touches 2 of the 8
  // servers, so only ~a quarter of reads meet the straggler — that is what
  // makes this a *tail* problem (the fault ablation's 512K full-stripe
  // reads drag every request through the slow server, shifting the mean
  // instead).
  return bench::figure_config(
      3.0, 8, 128ull << 10, 32ull << 20, [](ExperimentConfig& cfg) {
        // Two procs keep server queueing low enough that a redirected
        // read's one cache-cold strip (the stand-in server never serves
        // that stripe column, so read-ahead misses) stays inside the
        // healthy latency bucket — the redirect's real price is visible in
        // the mean, not as a fake tail.
        cfg.procs_per_client = 2;
        cfg.client.pfs.retransmit_timeout = Time::ms(50);
        cfg.telemetry.sample_period = Time::us(500);
        cfg.telemetry.slo.p99_read_latency_us = 20'000;
        // Tail-focused scheduler tuning (each knob reflected, so any row
        // is replayable with --set): detect from the very first inflated
        // sample, flag anything 1.5x the fleet floor, and keep recovery
        // probes rarer than the p99 mass of this run's 512 reads. The
        // unavoidable tail floor is the warmup: both procs' first reads
        // land on the stripe's first servers before any estimate exists,
        // so 32M per proc keeps those reads well under 1%.
        cfg.client.sched.min_samples = 1;
        cfg.client.sched.slow_threshold = 1.5;
        cfg.client.sched.probe_interval = 512;
      });
}

sweep::Axis sched_axis() {
  return sweep::make_axis(
      "sched",
      std::vector<pfs::ClientSchedPolicy>{
          pfs::ClientSchedPolicy::kFifo,
          pfs::ClientSchedPolicy::kStragglerAware},
      [](pfs::ClientSchedPolicy p) {
        return std::string(
            pfs::kClientSchedPolicyNames[static_cast<int>(p)]);
      },
      [](ExperimentConfig& c, pfs::ClientSchedPolicy p) {
        c.client.sched.policy = p;
      });
}

sweep::Axis straggler_axis(std::vector<i64> delays_us) {
  return sweep::make_axis(
      "straggler", std::move(delays_us),
      [](i64 us) {
        return us == 0 ? std::string("none") : std::to_string(us) + "us";
      },
      [](ExperimentConfig& c, i64 us) {
        c.fault.straggler_node = us == 0 ? -1 : 0;
        c.fault.straggler_delay = Time::us(us);
      });
}

// The headline sweep: scheduler x severity under source-aware routing.
const sweep::SweepResult& severity_sweep() {
  static const sweep::SweepResult res = [] {
    sweep::SweepSpec spec("sched-straggler", sched_config());
    spec.axis(sched_axis())
        .axis(straggler_axis({0, 200, 1000, 5000}))
        .policies({PolicyKind::kSourceAware});
    return bench::runner().run(spec);
  }();
  return res;
}

// Composition with interrupt placement at one severe straggler.
const sweep::SweepResult& routing_sweep() {
  static const sweep::SweepResult res = [] {
    ExperimentConfig base = sched_config();
    base.fault.straggler_node = 0;
    base.fault.straggler_delay = Time::us(5000);
    sweep::SweepSpec spec("sched-routing", base);
    spec.axis(sched_axis())
        .policies({PolicyKind::kRoundRobin, PolicyKind::kIrqbalance,
                   PolicyKind::kSourceAware});
    return bench::runner().run(spec);
  }();
  return res;
}

// How early to hedge: quantile x {clean network, heavy per-packet jitter}.
// A *persistent* straggler is the redirect path's case (the very first
// inflated sample flags the server, so hedge deadlines never trip); hedges
// earn their keep against *transient* variance, where the duplicate
// request re-rolls the jitter dice on the other path. Earlier hedges
// (lower quantile) cut the jittered tail but pay for it in wasted
// duplicates riding the softirq path.
const sweep::SweepResult& quantile_sweep() {
  static const sweep::SweepResult res = [] {
    ExperimentConfig base = sched_config();
    base.client.sched.policy = pfs::ClientSchedPolicy::kStragglerAware;
    sweep::SweepSpec spec("sched-quantile", base);
    spec.axis(sweep::make_field_axis(
                  "hedge_quantile", "client.sched.hedge_quantile",
                  std::vector<double>{0.0, 0.5, 1.0, 2.0},
                  [](double q) {
                    char buf[32];
                    std::snprintf(buf, sizeof buf, "%g", q);
                    return std::string(buf);
                  }))
        .axis(sweep::make_axis(
            "jitter", std::vector<i64>{0, 8000},
            [](i64 us) {
              return us == 0 ? std::string("clean")
                             : std::to_string(us) + "us";
            },
            [](ExperimentConfig& c, i64 us) {
              c.fault.max_jitter = Time::us(us);
            }))
        .policies({PolicyKind::kSourceAware});
    return bench::runner().run(spec);
  }();
  return res;
}

void print_sched_table(const sweep::SweepResult& res) {
  stats::Table t({"point", "policy", "bw_MB/s", "mean_read_us", "p99_read_us",
                  "hedges", "won", "wasted", "retransmits", "first_breach_us"});
  for (u64 i = 0; i < res.size(); ++i) {
    const RunMetrics& m = res.metrics[i];
    std::string point = res.points[i].labels[0];
    for (u64 l = 1; l + 1 < res.points[i].labels.size(); ++l)
      point += "/" + res.points[i].labels[l];
    t.add_row({point, res.points[i].labels.back(), m.bandwidth_mbps,
               m.mean_read_latency_us,
               i64{static_cast<i64>(m.p99_read_latency_us)},
               i64{static_cast<i64>(m.hedges_issued)},
               i64{static_cast<i64>(m.hedges_won)},
               i64{static_cast<i64>(m.hedges_wasted)},
               i64{static_cast<i64>(m.retransmits)},
               i64{static_cast<i64>(m.first_slo_breach_us)}});
  }
  bench::print_table(t);
}

}  // namespace

int main(int argc, char** argv) {
  bench::figure_init(&argc, argv);
  if (bench::emit_machine(
          {&severity_sweep(), &routing_sweep(), &quantile_sweep()})) {
    return 0;
  }

  bench::print_figure_header(
      "Straggler-aware client scheduling — scheduler x severity "
      "(8 servers, 128K, 3G NIC, source-aware routing)",
      "fifo issues strips in span order and eats the full straggler tail; "
      "straggler_aware redirects around the detected laggard and hedges "
      "stuck strips, so p99 should recover while the none row stays flat.");
  print_sched_table(severity_sweep());

  std::printf("\n--- composition with interrupt routing (5ms straggler) ---\n");
  print_sched_table(routing_sweep());

  std::printf("\n--- hedge quantile sensitivity ---\n");
  print_sched_table(quantile_sweep());

  return 0;
}
